// Failure injection: the paper motivates aging mitigation with early-stage
// FU failures that "limit the ILP exploitation and CGRA performance". This
// example makes that concrete with the first-class fabric.Health capability:
// it kills the most-stressed FUs one by one (the ones the baseline allocator
// wears out first) and measures how the system degrades — the DBT's mapper
// places new translations on live cells only, and the aging-mitigation
// controller skips pivot offsets that would rotate a configuration onto a
// dead FU, so architectural correctness survives every failure.
package main

import (
	"fmt"
	"log"

	"agingcgra/internal/alloc"
	"agingcgra/internal/dbt"
	"agingcgra/internal/explore"
	"agingcgra/internal/fabric"
	"agingcgra/internal/prog"
	"agingcgra/internal/report"
)

func main() {
	geom := fabric.NewGeometry(2, 16) // the BE design
	bench, _ := prog.ByName("sha")

	// Reference: the healthy fabric.
	healthy := run(bench, geom, fabric.NewHealth(geom), "baseline").TotalCycles
	fmt.Printf("healthy fabric: %d cycles\n\n", healthy)

	// Kill FUs in the order the baseline allocator stresses them: the
	// top-left corner first, exactly where Fig. 1 says the wear
	// concentrates.
	killOrder := []fabric.Cell{
		{Row: 0, Col: 0}, {Row: 0, Col: 1}, {Row: 1, Col: 0},
		{Row: 0, Col: 2}, {Row: 1, Col: 1}, {Row: 0, Col: 3},
		{Row: 1, Col: 2}, {Row: 1, Col: 3},
	}

	tab := &report.Table{Header: []string{
		"dead FUs", "baseline cycles", "slowdown", "rotated cycles", "slowdown",
		"rot worst duty", "explore worst duty"}}
	healthBase := fabric.NewHealth(geom)
	healthRot := fabric.NewHealth(geom)
	healthExp := fabric.NewHealth(geom)
	for i := 0; i <= len(killOrder); i++ {
		if i > 0 {
			healthBase.Kill(killOrder[i-1])
			healthRot.Kill(killOrder[i-1])
			healthExp.Kill(killOrder[i-1])
		}
		base := run(bench, geom, healthBase, "baseline")
		rot := run(bench, geom, healthRot, "snake")
		exp := run(bench, geom, healthExp, "explore")
		rotWorst, _ := rot.Util.Max()
		expWorst, _ := exp.Util.Max()
		tab.AddRow(
			fmt.Sprintf("%d", healthBase.DeadCount()),
			fmt.Sprintf("%d", base.TotalCycles),
			fmt.Sprintf("%+.1f%%", 100*(float64(base.TotalCycles)/float64(healthy)-1)),
			fmt.Sprintf("%d", rot.TotalCycles),
			fmt.Sprintf("%+.1f%%", 100*(float64(rot.TotalCycles)/float64(healthy)-1)),
			fmt.Sprintf("%.1f%%", 100*rotWorst),
			fmt.Sprintf("%.1f%%", 100*expWorst),
		)
	}
	fmt.Print(tab.String())
	fmt.Println()
	fmt.Println("The DBT maps new translations around dead cells and the controller")
	fmt.Println("refuses pivots that would drive them, so the system keeps working,")
	fmt.Println("and the pivot skip is free: rotated and baseline cycles match even")
	fmt.Println("on the damaged fabric (placement moves stress, not latency) —")
	fmt.Println("but every dead FU near the hot corner costs ILP and stretches the")
	fmt.Println("configurations, and the blind rotation's skip-scan re-concentrates")
	fmt.Println("duty on whichever survivors follow the dead cells in the pattern")
	fmt.Println("(the 'rot worst duty' climb). The wear-aware placement explorer")
	fmt.Println("instead searches the live pivots for the placement minimising the")
	fmt.Println("maximum projected ΔVt, keeping survivor duty flat as the fabric")
	fmt.Println("shrinks. Run cmd/cgra-lifetime for the multi-year three-way view.")
}

// run executes the benchmark against the given fabric health and returns
// the report. Dead cells force the mapper and the placement elsewhere.
func run(bench *prog.Benchmark, geom fabric.Geometry, health *fabric.Health, allocator string) *dbt.Report {
	core, err := bench.NewCore(prog.Tiny)
	if err != nil {
		log.Fatal(err)
	}
	var a alloc.Allocator = alloc.Baseline{}
	switch allocator {
	case "snake":
		a = alloc.NewUtilizationAware(geom)
	case "explore":
		a = explore.New(geom)
	}
	eng, err := dbt.NewEngine(dbt.Options{
		Geom:      geom,
		Allocator: a,
		Health:    health,
		Wear:      fabric.NewWear(geom),
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := eng.Run(core, bench.MaxInstructions)
	if err != nil {
		log.Fatal(err)
	}
	// Architectural correctness survives failures.
	if err := bench.Check(core.Mem, core.Regs[10], prog.Tiny); err != nil {
		log.Fatal(err)
	}
	return rep
}
