// Failure injection: the paper motivates aging mitigation with early-stage
// FU failures that "limit the ILP exploitation and CGRA performance". This
// example makes that concrete: it kills the most-stressed FUs one by one
// (the ones the baseline allocator wears out first) and measures how the
// DBT's ability to map around dead cells degrades performance — the
// graceful-degradation extension of the reproduction.
package main

import (
	"fmt"
	"log"

	"agingcgra/internal/alloc"
	"agingcgra/internal/dbt"
	"agingcgra/internal/fabric"
	"agingcgra/internal/prog"
	"agingcgra/internal/report"
)

func main() {
	geom := fabric.NewGeometry(2, 16) // the BE design
	bench, _ := prog.ByName("sha")

	// Reference: the healthy fabric.
	healthy := run(bench, geom, nil)
	fmt.Printf("healthy fabric: %d cycles\n\n", healthy)

	// Kill FUs in the order the baseline allocator stresses them: the
	// top-left corner first, exactly where Fig. 1 says the wear
	// concentrates.
	killOrder := []fabric.Cell{
		{Row: 0, Col: 0}, {Row: 0, Col: 1}, {Row: 1, Col: 0},
		{Row: 0, Col: 2}, {Row: 1, Col: 1}, {Row: 0, Col: 3},
		{Row: 1, Col: 2}, {Row: 1, Col: 3},
	}

	tab := &report.Table{Header: []string{"dead FUs", "cycles", "slowdown vs healthy"}}
	var dead []fabric.Cell
	for i := 0; i <= len(killOrder); i++ {
		if i > 0 {
			dead = append(dead, killOrder[i-1])
		}
		cycles := run(bench, geom, dead)
		tab.AddRow(
			fmt.Sprintf("%d", len(dead)),
			fmt.Sprintf("%d", cycles),
			fmt.Sprintf("%+.1f%%", 100*(float64(cycles)/float64(healthy)-1)),
		)
	}
	fmt.Print(tab.String())
	fmt.Println()
	fmt.Println("The DBT maps around dead cells, so the system keeps working —")
	fmt.Println("but every dead FU near the hot corner costs ILP and stretches the")
	fmt.Println("configurations. This is precisely the failure mode the paper's")
	fmt.Println("utilization-aware allocation postpones by 2.3-8x.")
}

// run executes the benchmark with the given dead cells and returns total
// cycles. Dead cells force the mapper to place operations elsewhere.
func run(bench *prog.Benchmark, geom fabric.Geometry, dead []fabric.Cell) uint64 {
	core, err := bench.NewCore(prog.Tiny)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := dbt.NewEngine(dbt.Options{
		Geom:          geom,
		Allocator:     alloc.Baseline{},
		DisabledCells: dead,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := eng.Run(core, bench.MaxInstructions)
	if err != nil {
		log.Fatal(err)
	}
	// Architectural correctness survives failures.
	if err := bench.Check(core.Mem, core.Regs[10], prog.Tiny); err != nil {
		log.Fatal(err)
	}
	return rep.TotalCycles
}
