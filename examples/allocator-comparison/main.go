// Allocator comparison: run the full workload suite on the BE design under
// every allocation strategy and compare how evenly each spreads the NBTI
// stress — and what that means for lifetime.
package main

import (
	"fmt"
	"log"

	"agingcgra"
	"agingcgra/internal/aging"
	"agingcgra/internal/report"
)

func main() {
	geom := agingcgra.NewGeometry(2, 16) // the BE scenario
	model := aging.NewModel()

	allocators := []string{
		"baseline",
		"utilization-aware",
		"utilization-aware-rowmajor",
		"utilization-aware-diagonal",
		"utilization-aware-horizontal",
		"utilization-aware-vertical",
		"utilization-aware-shuffled",
		"health-aware",
	}

	tab := &report.Table{Header: []string{
		"allocator", "worst util", "avg util", "CoV", "Gini", "lifetime", "speedup",
	}}

	var baselineWorst float64
	for _, name := range allocators {
		res, err := agingcgra.SuiteOnce(geom, name, agingcgra.ExperimentOptions{Size: agingcgra.Small})
		if err != nil {
			log.Fatal(err)
		}
		f := agingcgra.Flatness(res)
		if name == "baseline" {
			baselineWorst = f.Max
		}
		tab.AddRow(
			name,
			fmt.Sprintf("%.1f%%", 100*f.Max),
			fmt.Sprintf("%.1f%%", 100*f.Avg),
			fmt.Sprintf("%.3f", f.CoV),
			fmt.Sprintf("%.3f", f.Gini),
			fmt.Sprintf("%.1fy (%.2fx)", model.Lifetime(f.Max), model.Improvement(baselineWorst, f.Max)),
			fmt.Sprintf("%.2fx", res.Speedup()),
		)
	}

	fmt.Printf("allocation strategies on %v, full suite, small inputs\n\n", geom)
	fmt.Print(tab.String())
	fmt.Println()
	fmt.Println("Reading the table: the utilization-aware patterns flatten the duty")
	fmt.Println("distribution (low CoV/Gini), which divides the worst-case stress and")
	fmt.Println("multiplies lifetime, at no speedup cost. Horizontal-only and")
	fmt.Println("vertical-only movement (the cheaper partial ablations) recover only")
	fmt.Println("part of the benefit; stress-feedback (health-aware) matches the blind")
	fmt.Println("rotation without needing aging sensors to be wrong about.")
}
