package agingcgra

import (
	"fmt"
	"strings"

	"agingcgra/internal/alloc"
	"agingcgra/internal/explore"
	"agingcgra/internal/fabric"
	"agingcgra/internal/lifetime"
	"agingcgra/internal/report"
)

// ExplorerSweepOptions configures the wear-aware explorer's own
// design-space exploration: the (projection horizon × recompute period)
// grid the explorer's defaults were never swept over, crossed with
// clustered-failure scenarios so the adaptivity actually has failures to
// adapt to. Every point is one lifetime simulation under stale
// translations (configurations mapped for the pristine fabric), the
// regime where the pattern decides how long the fabric stays useful.
type ExplorerSweepOptions struct {
	// Rows and Cols size the fabric (default 2×16, the BE design).
	Rows, Cols int
	// Horizons lists the projection horizons in years
	// (default 0.25, 1, 4 — around the unswept default of 1).
	Horizons []float64
	// Periods lists the recompute periods in executions
	// (default 4, 16, 64 — around the unswept default of 16).
	Periods []int
	// Failures lists named failure patterns injected before the first
	// epoch (fabric.PatternCells; default healthy, column, quadrant).
	Failures []string
	// Benchmarks is the per-epoch mix (default crc32).
	Benchmarks []string
	// Size is the workload scale (default Tiny).
	Size Size
	// EpochYears and MaxYears shape the timeline (default 0.5 / 20).
	EpochYears float64
	MaxYears   float64
	// Workers bounds scenario parallelism (0: all CPUs, 1: serial).
	Workers int
}

func (o *ExplorerSweepOptions) applyDefaults() {
	if o.Rows == 0 {
		o.Rows = 2
	}
	if o.Cols == 0 {
		o.Cols = 16
	}
	if len(o.Horizons) == 0 {
		o.Horizons = []float64{0.25, 1, 4}
	}
	if len(o.Periods) == 0 {
		o.Periods = []int{4, 16, 64}
	}
	if len(o.Failures) == 0 {
		o.Failures = []string{"healthy", "column", "quadrant"}
	}
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = []string{"crc32"}
	}
	if o.EpochYears == 0 {
		o.EpochYears = 0.5
	}
	if o.MaxYears == 0 {
		o.MaxYears = 20
	}
}

// ExplorerSweepPoint is one (horizon, period, failure) outcome.
type ExplorerSweepPoint struct {
	HorizonYears   float64 `json:"horizon_years"`
	Period         int     `json:"period"`
	Failure        string  `json:"failure"`
	FirstDeath     float64 `json:"first_death_years"`
	SecondDeath    float64 `json:"second_death_years"`
	ThirdDeath     float64 `json:"third_death_years"`
	TotalDeaths    int     `json:"total_deaths"`
	AliveFraction  float64 `json:"alive_fraction"`
	InitialSpeedup float64 `json:"initial_speedup"`
	FinalSpeedup   float64 `json:"final_speedup"`
}

// ExplorerSweepResult is the full grid in deterministic order: failures
// outermost, then horizons, then periods.
type ExplorerSweepResult struct {
	Geom   Geometry             `json:"geom"`
	Points []ExplorerSweepPoint `json:"points"`
}

// ExplorerSweep runs the (horizon × period × failure) grid through the
// lifetime engine's scenario batch: deterministic point order,
// byte-identical results between serial and parallel runs.
func ExplorerSweep(opt ExplorerSweepOptions) (*ExplorerSweepResult, error) {
	opt.applyDefaults()
	g := fabric.NewGeometry(opt.Rows, opt.Cols)
	if err := g.Validate(); err != nil {
		return nil, err
	}

	type key struct {
		horizon float64
		period  int
		failure string
	}
	var keys []key
	var scs []lifetime.Scenario
	for _, failure := range opt.Failures {
		dead, err := fabric.PatternCells(failure, g)
		if err != nil {
			return nil, err
		}
		for _, horizon := range opt.Horizons {
			if horizon <= 0 {
				return nil, fmt.Errorf("agingcgra: explorer sweep horizon %v must be positive", horizon)
			}
			for _, period := range opt.Periods {
				if period < 1 {
					return nil, fmt.Errorf("agingcgra: explorer sweep period %d must be >= 1", period)
				}
				h, p := horizon, period
				sc := lifetime.Scenario{
					Name: fmt.Sprintf("%v/explore/h=%vy/p=%d/%s", g, h, p, failure),
					Geom: g,
					Factory: func(g fabric.Geometry) alloc.Allocator {
						return explore.New(g, explore.WithHorizon(h), explore.WithRecomputeEvery(p))
					},
					Mix:         opt.Benchmarks,
					Size:        opt.Size,
					EpochYears:  opt.EpochYears,
					MaxYears:    opt.MaxYears,
					InitialDead: dead,
				}
				sc.Engine.StaleTranslations = true
				keys = append(keys, key{horizon: h, period: p, failure: failure})
				scs = append(scs, sc)
			}
		}
	}

	results, err := lifetime.RunScenarios(scs, opt.Workers)
	if err != nil {
		return nil, err
	}
	out := &ExplorerSweepResult{Geom: g}
	for i, r := range results {
		out.Points = append(out.Points, ExplorerSweepPoint{
			HorizonYears:   keys[i].horizon,
			Period:         keys[i].period,
			Failure:        keys[i].failure,
			FirstDeath:     r.NthDeathYears(1),
			SecondDeath:    r.NthDeathYears(2),
			ThirdDeath:     r.NthDeathYears(3),
			TotalDeaths:    r.TotalDeaths,
			AliveFraction:  r.AliveFraction,
			InitialSpeedup: r.InitialSpeedup,
			FinalSpeedup:   r.FinalSpeedup,
		})
	}
	return out, nil
}

// Render prints the grid as a table, one block per failure scenario.
func (r *ExplorerSweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Explorer DSE - projection horizon x recompute period on %v (stale translations)\n", r.Geom)
	byFailure := make(map[string][]ExplorerSweepPoint)
	var order []string
	for _, p := range r.Points {
		if _, ok := byFailure[p.Failure]; !ok {
			order = append(order, p.Failure)
		}
		byFailure[p.Failure] = append(byFailure[p.Failure], p)
	}
	death := func(y float64) string {
		if y == 0 {
			return "none"
		}
		return fmt.Sprintf("%.2fy", y)
	}
	for _, failure := range order {
		fmt.Fprintf(&b, "\n[failure: %s]\n", failure)
		tab := &report.Table{Header: []string{
			"horizon", "period", "1st death", "2nd death", "3rd death", "deaths", "alive", "speedup@0", "speedup@end",
		}}
		for _, p := range byFailure[failure] {
			tab.AddRow(
				fmt.Sprintf("%gy", p.HorizonYears),
				fmt.Sprintf("%d", p.Period),
				death(p.FirstDeath), death(p.SecondDeath), death(p.ThirdDeath),
				fmt.Sprintf("%d", p.TotalDeaths),
				fmt.Sprintf("%.0f%%", 100*p.AliveFraction),
				fmt.Sprintf("%.2f", p.InitialSpeedup),
				fmt.Sprintf("%.2f", p.FinalSpeedup),
			)
		}
		b.WriteString(tab.String())
	}
	return b.String()
}

// CSVRows flattens the grid for report.WriteCSV, matching CSVHeader.
func (r *ExplorerSweepResult) CSVRows() [][]string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			p.Failure,
			fmt.Sprintf("%g", p.HorizonYears),
			fmt.Sprintf("%d", p.Period),
			fmt.Sprintf("%.6f", p.FirstDeath),
			fmt.Sprintf("%.6f", p.SecondDeath),
			fmt.Sprintf("%.6f", p.ThirdDeath),
			fmt.Sprintf("%d", p.TotalDeaths),
			fmt.Sprintf("%.6f", p.AliveFraction),
			fmt.Sprintf("%.6f", p.InitialSpeedup),
			fmt.Sprintf("%.6f", p.FinalSpeedup),
		})
	}
	return rows
}

// CSVHeader names the CSVRows columns.
func (r *ExplorerSweepResult) CSVHeader() []string {
	return []string{
		"failure", "horizon_years", "period",
		"first_death_years", "second_death_years", "third_death_years",
		"total_deaths", "alive_fraction", "initial_speedup", "final_speedup",
	}
}
