package agingcgra

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// TestLifetimeReproducesPaperHeadline pins the paper's central claim on the
// long-horizon simulator: on the BE design, utilization-aware (snake)
// allocation extends time-to-first-FU-death over the baseline by the
// worst-utilization ratio (Eq. 1: lifetime at a fixed delay threshold
// scales as 1/u, so the improvement factor is u_baseline / u_proposed).
func TestLifetimeReproducesPaperHeadline(t *testing.T) {
	results, err := RunLifetimes([]LifetimeConfig{
		{Allocator: "baseline", Benchmarks: []string{"crc32"}, EpochYears: 0.25, MaxYears: 40},
		{Allocator: "utilization-aware", Benchmarks: []string{"crc32"}, EpochYears: 0.25, MaxYears: 40},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	base, prop := results[0], results[1]

	if base.FirstDeathYears == 0 || prop.FirstDeathYears == 0 {
		t.Fatalf("expected first deaths within the horizon: baseline %v, proposed %v",
			base.FirstDeathYears, prop.FirstDeathYears)
	}

	uBase := base.Timeline[0].WorstUtil
	uProp := prop.Timeline[0].WorstUtil
	if uProp >= uBase {
		t.Fatalf("rotation should lower worst-case utilization: baseline %v, proposed %v",
			uBase, uProp)
	}

	deathRatio := prop.FirstDeathYears / base.FirstDeathYears
	utilRatio := uBase / uProp
	if deathRatio <= 1.5 {
		t.Errorf("time-to-first-death extension %v, want a clear improvement (paper: 2.3x on BE)",
			deathRatio)
	}
	// Pre-first-death, per-epoch utilization is constant and death times
	// are interpolated within epochs, so the extension matches the
	// worst-utilization ratio almost exactly; allow 5% for the epoch
	// discretization of post-death dynamics.
	if math.Abs(deathRatio-utilRatio)/utilRatio > 0.05 {
		t.Errorf("extension %v diverges from worst-utilization ratio %v (Eq. 1 says they match)",
			deathRatio, utilRatio)
	}

	// The healthy fabric must actually accelerate, and the aged one decay
	// toward GPP-only performance as FUs die.
	for _, r := range results {
		if r.InitialSpeedup <= 1 {
			t.Errorf("%s: healthy speedup %v, want > 1", r.Name, r.InitialSpeedup)
		}
		if r.FinalSpeedup > r.InitialSpeedup {
			t.Errorf("%s: speedup grew with age (%v -> %v)", r.Name, r.InitialSpeedup, r.FinalSpeedup)
		}
	}
}

// TestExplorerThreeWayLifetime pins the wear-aware explorer's headline on
// the BE design with failure injection: the three-way baseline / snake /
// explore comparison cgra-lifetime emits, with the explorer's
// time-to-second-FU-death no earlier than the snake rotation's (post-failure
// the snake only skip-scans to the first live pivot, re-concentrating wear,
// while the explorer picks the live placement minimising the maximum
// projected ΔVt). The full three-way JSON is additionally pinned
// byte-identical between the serial and parallel scenario batches.
func TestExplorerThreeWayLifetime(t *testing.T) {
	configs := []LifetimeConfig{
		{Allocator: "baseline", Benchmarks: []string{"crc32"}, EpochYears: 0.25, MaxYears: 40},
		{Allocator: "utilization-aware", Benchmarks: []string{"crc32"}, EpochYears: 0.25, MaxYears: 40},
		{Allocator: "explore", Benchmarks: []string{"crc32"}, EpochYears: 0.25, MaxYears: 40},
	}
	serial, err := RunLifetimes(configs, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunLifetimes(configs, 3)
	if err != nil {
		t.Fatal(err)
	}

	sj, err := json.MarshalIndent(serial, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.MarshalIndent(parallel, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, pj) {
		t.Fatalf("serial and parallel three-way timelines differ:\nserial:\n%s\nparallel:\n%s", sj, pj)
	}

	base, snake, explored := serial[0], serial[1], serial[2]
	for _, r := range serial {
		if len(r.DeathAges) < 3 {
			t.Fatalf("%s: want at least three deaths within 40 years, got %v", r.Name, r.DeathAges)
		}
	}

	// Rotation beats the baseline (the paper), and the explorer is at least
	// as durable as the rotation once failures start: second death no
	// earlier, first death no earlier either (wear feedback can only
	// flatten the cumulative stress the rotation already spreads).
	if snake.FirstDeathYears <= base.FirstDeathYears {
		t.Errorf("snake first death %v, want later than baseline %v",
			snake.FirstDeathYears, base.FirstDeathYears)
	}
	if explored.NthDeathYears(2) < snake.NthDeathYears(2) {
		t.Errorf("explorer second death %v years, earlier than snake %v",
			explored.NthDeathYears(2), snake.NthDeathYears(2))
	}
	if explored.NthDeathYears(3) == 0 || snake.NthDeathYears(3) == 0 {
		t.Error("third-death comparison missing a data point")
	}
}

// TestShapeSearchOnDeadColumns pins the dead-column BE headline across the
// three rescue mechanisms — translation-only (stale), allocation-time
// remap (stale), and translation-time shape search — as a four-scenario
// batch, serial==parallel byte-identical.
//
// Throughput: with stale translations the explorer loses the hot kernel
// configurations to the GPP (no pivot of a full-length healthy rectangle
// avoids the columns); the remap allocator rescues them at allocation time
// (PR 4's pin), and — the tentpole — translation-time shape search keeps
// them on-fabric with a *plain explorer*, no remap layer needed: fresh
// translations are born shape- and health-aware.
//
// Lifetime: within the shape-aware regime the remap allocator's wear
// trigger only ever substitutes placements projecting less worst-cell
// wear, so remap+shapes reaches its first/second/third FU death no earlier
// than explore+shapes. (The work-shedding explorer+stale scenario is no
// longer a lifetime yardstick for the kernel-carrying regimes: since the
// explorer hold-period fix, its fabric simply carries less relative duty —
// the old "remap outlives stale explore" pin was an artifact of the
// per-proposal hold-period counting. See ROADMAP.)
func TestShapeSearchOnDeadColumns(t *testing.T) {
	mk := func(allocator string, stale, shaped bool) LifetimeConfig {
		return LifetimeConfig{
			Allocator:         allocator,
			Benchmarks:        []string{"crc32"},
			EpochYears:        0.25,
			MaxYears:          12,
			DeadPattern:       "columns:0+8",
			StaleTranslations: stale,
			ShapeTranslations: shaped,
		}
	}
	configs := []LifetimeConfig{
		mk("explore", true, false), // translation-only, stale memory
		mk("remap", true, false),   // allocation-time rescue
		mk("explore", false, true), // translation-time shape search alone
		mk("remap", false, true),   // shape search + allocation-time rescue
	}
	serial, err := RunLifetimes(configs, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunLifetimes(configs, 4)
	if err != nil {
		t.Fatal(err)
	}
	sj, err := json.MarshalIndent(serial, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.MarshalIndent(parallel, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, pj) {
		t.Fatal("serial and parallel four-way timelines differ")
	}

	exploreStale, remapStale := serial[0], serial[1]
	exploreShaped, remapShaped := serial[2], serial[3]

	// Allocation-time rescue keeps the kernel on-fabric (PR 4's pin).
	if remapStale.Timeline[0].Offloads <= exploreStale.Timeline[0].Offloads {
		t.Errorf("remap offloads %d not above stale explorer's %d under the dead columns",
			remapStale.Timeline[0].Offloads, exploreStale.Timeline[0].Offloads)
	}
	if remapStale.InitialSpeedup <= exploreStale.InitialSpeedup {
		t.Errorf("remap speedup %v not above stale explorer's %v under the dead columns",
			remapStale.InitialSpeedup, exploreStale.InitialSpeedup)
	}

	// The tentpole: shape-aware translation rescues the kernel without any
	// allocation-time remapping — a plain explorer out-accelerates its
	// stale self.
	if exploreShaped.Timeline[0].Offloads <= exploreStale.Timeline[0].Offloads {
		t.Errorf("shape-translating explorer offloads %d not above its stale self's %d",
			exploreShaped.Timeline[0].Offloads, exploreStale.Timeline[0].Offloads)
	}
	if exploreShaped.InitialSpeedup <= exploreStale.InitialSpeedup {
		t.Errorf("shape-translating explorer speedup %v not above its stale self's %v",
			exploreShaped.InitialSpeedup, exploreStale.InitialSpeedup)
	}

	// Within the shape-aware regime the wear trigger's superset property
	// still orders the death ages: remap+shapes >= explore+shapes.
	for n := 1; n <= 3; n++ {
		ed, rd := exploreShaped.NthDeathYears(n), remapShaped.NthDeathYears(n)
		if ed == 0 || rd == 0 {
			t.Fatalf("death #%d missing within the horizon: explore+shapes %v, remap+shapes %v", n, ed, rd)
		}
		if rd < ed {
			t.Errorf("remap+shapes death #%d at %v years, earlier than explore+shapes' %v", n, rd, ed)
		}
	}

	// The derived search-cost model reports every searching scenario, and
	// the translation ladder scans only appear in the shape-aware regime.
	for _, r := range serial {
		if r.Search == nil {
			t.Fatalf("%s: no search-cost report", r.Name)
		}
	}
	if exploreStale.Search.Counts.LadderScans != 0 {
		t.Errorf("stale explorer counted %d ladder scans; translation-time search should be off",
			exploreStale.Search.Counts.LadderScans)
	}
	if exploreShaped.Search.Counts.LadderScans == 0 || exploreShaped.Search.Cost.Translation.Cycles == 0 {
		t.Error("shape-translating explorer's ladder scans uncounted")
	}
	if remapStale.Search.Counts.RemapScans == 0 {
		t.Error("stale remap's rescue scans uncounted")
	}
}
