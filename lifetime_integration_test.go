package agingcgra

import (
	"math"
	"testing"
)

// TestLifetimeReproducesPaperHeadline pins the paper's central claim on the
// long-horizon simulator: on the BE design, utilization-aware (snake)
// allocation extends time-to-first-FU-death over the baseline by the
// worst-utilization ratio (Eq. 1: lifetime at a fixed delay threshold
// scales as 1/u, so the improvement factor is u_baseline / u_proposed).
func TestLifetimeReproducesPaperHeadline(t *testing.T) {
	results, err := RunLifetimes([]LifetimeConfig{
		{Allocator: "baseline", Benchmarks: []string{"crc32"}, EpochYears: 0.25, MaxYears: 40},
		{Allocator: "utilization-aware", Benchmarks: []string{"crc32"}, EpochYears: 0.25, MaxYears: 40},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	base, prop := results[0], results[1]

	if base.FirstDeathYears == 0 || prop.FirstDeathYears == 0 {
		t.Fatalf("expected first deaths within the horizon: baseline %v, proposed %v",
			base.FirstDeathYears, prop.FirstDeathYears)
	}

	uBase := base.Timeline[0].WorstUtil
	uProp := prop.Timeline[0].WorstUtil
	if uProp >= uBase {
		t.Fatalf("rotation should lower worst-case utilization: baseline %v, proposed %v",
			uBase, uProp)
	}

	deathRatio := prop.FirstDeathYears / base.FirstDeathYears
	utilRatio := uBase / uProp
	if deathRatio <= 1.5 {
		t.Errorf("time-to-first-death extension %v, want a clear improvement (paper: 2.3x on BE)",
			deathRatio)
	}
	// Pre-first-death, per-epoch utilization is constant and death times
	// are interpolated within epochs, so the extension matches the
	// worst-utilization ratio almost exactly; allow 5% for the epoch
	// discretization of post-death dynamics.
	if math.Abs(deathRatio-utilRatio)/utilRatio > 0.05 {
		t.Errorf("extension %v diverges from worst-utilization ratio %v (Eq. 1 says they match)",
			deathRatio, utilRatio)
	}

	// The healthy fabric must actually accelerate, and the aged one decay
	// toward GPP-only performance as FUs die.
	for _, r := range results {
		if r.InitialSpeedup <= 1 {
			t.Errorf("%s: healthy speedup %v, want > 1", r.Name, r.InitialSpeedup)
		}
		if r.FinalSpeedup > r.InitialSpeedup {
			t.Errorf("%s: speedup grew with age (%v -> %v)", r.Name, r.InitialSpeedup, r.FinalSpeedup)
		}
	}
}
