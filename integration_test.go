package agingcgra

import (
	"math"
	"testing"
)

// TestReproductionBandsSmall pins the paper-reproduction bands of
// EXPERIMENTS.md at the Small (paper-equivalent) scale. If any of these
// fail, the repository no longer reproduces the paper — regardless of what
// the unit tests say. Skipped under -short.
func TestReproductionBandsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("reproduction bands need Small-scale runs")
	}

	// --- Fig. 1: the motivational corner bias on the 4x8 fabric. ---
	f1, err := Fig1(ExperimentOptions{Size: Small})
	if err != nil {
		t.Fatal(err)
	}
	if got := f1.Util.At(0, 0); got < 0.95 {
		t.Errorf("Fig1 hot corner = %.3f, want >= 0.95 (paper: 1.00)", got)
	}
	if got := f1.Util.At(3, 7); got > 0.05 {
		t.Errorf("Fig1 cold corner = %.3f, want <= 0.05 (paper: 0.01)", got)
	}
	// Monotone-ish decay: row and column averages must fall.
	rowAvg := func(r int) float64 {
		var s float64
		for c := 0; c < 8; c++ {
			s += f1.Util.At(r, c)
		}
		return s / 8
	}
	for r := 1; r < 4; r++ {
		if rowAvg(r) >= rowAvg(r-1) {
			t.Errorf("Fig1 row %d avg %.3f not below row %d avg %.3f",
				r+1, rowAvg(r), r, rowAvg(r-1))
		}
	}

	// --- Table I: lifetime improvements on the paper's scenarios. ---
	t1, err := Table1(ExperimentOptions{Size: Small})
	if err != nil {
		t.Fatal(err)
	}
	be, bp, bu := t1.Rows[0], t1.Rows[1], t1.Rows[2]

	// BE reproduces closely: paper 2.29x, band [2.0, 2.8].
	if be.LifetimeImprovement < 2.0 || be.LifetimeImprovement > 2.8 {
		t.Errorf("BE improvement = %.2fx, want within [2.0, 2.8] (paper 2.29x)", be.LifetimeImprovement)
	}
	// BE average utilization matches the paper's 39.7% within a few points.
	if math.Abs(be.AvgUtil-0.397) > 0.06 {
		t.Errorf("BE avg util = %.3f, want 0.397 +/- 0.06", be.AvgUtil)
	}
	// Proposed worst = the paper's 41.1% within a few points.
	if math.Abs(be.ProposedWorst-0.411) > 0.05 {
		t.Errorf("BE proposed worst = %.3f, want 0.411 +/- 0.05", be.ProposedWorst)
	}
	// Improvements grow with fabric size and exceed the paper's values
	// (documented overshoot in EXPERIMENTS.md).
	if !(be.LifetimeImprovement < bp.LifetimeImprovement && bp.LifetimeImprovement < bu.LifetimeImprovement) {
		t.Errorf("improvements not monotone: %.2f %.2f %.2f",
			be.LifetimeImprovement, bp.LifetimeImprovement, bu.LifetimeImprovement)
	}
	if bp.LifetimeImprovement < 4.0 || bu.LifetimeImprovement < 7.5 {
		t.Errorf("BP/BU improvements %.2f/%.2f below the paper's 4.37/7.97",
			bp.LifetimeImprovement, bu.LifetimeImprovement)
	}
	// The rotation must be performance-neutral ("negligible overheads").
	for _, row := range t1.Rows {
		if math.Abs(row.PerfOverhead) > 0.01 {
			t.Errorf("%s perf overhead = %.3f%%, want |x| <= 1%%", row.Scenario, 100*row.PerfOverhead)
		}
	}
	// The BE narrative: ~3 years baseline, ~7 years proposed.
	if be.BaselineLifetimeYears < 2.7 || be.BaselineLifetimeYears > 3.5 {
		t.Errorf("BE baseline lifetime = %.1fy, want ~3y", be.BaselineLifetimeYears)
	}
	if be.ProposedLifetimeYears < 6.2 || be.ProposedLifetimeYears > 8.2 {
		t.Errorf("BE proposed lifetime = %.1fy, want ~7y", be.ProposedLifetimeYears)
	}

	// --- Fig. 6: the energy anchors and scenario selection. ---
	f6, err := Fig6(ExperimentOptions{Size: Small})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][2]float64{ // design -> {target relEnergy, tolerance}
		"L16,W2": {0.90, 0.04},
		"L32,W4": {1.20, 0.05},
		"L32,W8": {1.46, 0.05},
	}
	for _, p := range f6.Points {
		if w, ok := want[p.Geom.String()]; ok {
			if math.Abs(p.RelEnergy-w[0]) > w[1] {
				t.Errorf("%v rel energy = %.3f, want %.2f +/- %.2f",
					p.Geom, p.RelEnergy, w[0], w[1])
			}
		}
		// Every design accelerates: speedups in the paper's 1.5-2.5x band.
		if p.Speedup < 1.4 || p.Speedup > 2.6 {
			t.Errorf("%v speedup = %.2f outside [1.4, 2.6]", p.Geom, p.Speedup)
		}
	}
	if f6.Selected[BE] != NewGeometry(2, 16) {
		t.Errorf("BE selection = %v, want L16,W2", f6.Selected[BE])
	}
	if f6.Selected[BU] != NewGeometry(8, 32) {
		t.Errorf("BU selection = %v, want L32,W8", f6.Selected[BU])
	}
	// BP lands at W4 (L24 or L32 are time-equivalent; see EXPERIMENTS.md).
	if f6.Selected[BP].Rows != 4 {
		t.Errorf("BP selection = %v, want a W4 design", f6.Selected[BP])
	}

	// --- Table II: the area claims. ---
	t2 := Table2()
	if inc := t2.Overhead.AreaIncrease(); inc <= 0 || inc >= 0.10 {
		t.Errorf("area overhead = %.2f%%, want (0, 10%%) (paper +4.15%%)", 100*inc)
	}
	if t2.CriticalPathBasePs != t2.CriticalPathModPs {
		t.Error("movement hardware changed the critical path (paper: both 120 ps)")
	}
}

// TestDeterministicReproduction runs one scenario comparison twice and
// demands bit-identical utilization maps: the property every number in
// EXPERIMENTS.md relies on.
func TestDeterministicReproduction(t *testing.T) {
	run := func() []float64 {
		r, err := SuiteOnce(NewGeometry(2, 16), "utilization-aware",
			ExperimentOptions{Size: Tiny, Benchmarks: []string{"crc32", "sha"}})
		if err != nil {
			t.Fatal(err)
		}
		return r.Util.Duty
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic duty at cell %d: %v vs %v", i, a[i], b[i])
		}
	}
}
