package agingcgra

import (
	"bytes"
	"encoding/json"
	"testing"
)

// sweepOpts is the reduced grid the determinism pin runs: 2 horizons × 2
// periods × 2 failure scenarios over a short horizon.
func sweepOpts(workers int) ExplorerSweepOptions {
	return ExplorerSweepOptions{
		Horizons:   []float64{0.5, 2},
		Periods:    []int{8, 32},
		Failures:   []string{"column", "survivor-row:1"},
		EpochYears: 0.5,
		MaxYears:   3,
		Workers:    workers,
	}
}

// TestExplorerSweepDeterministic pins the (horizon × period × failure)
// preset: point order is the deterministic failure-major grid, serial and
// parallel runs are byte-identical, and repeated runs reproduce the same
// bytes — the property the cgra-dse preset's CSV output rests on.
func TestExplorerSweepDeterministic(t *testing.T) {
	serial, err := ExplorerSweep(sweepOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ExplorerSweep(sweepOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	again, err := ExplorerSweep(sweepOpts(1))
	if err != nil {
		t.Fatal(err)
	}

	sj, err := json.MarshalIndent(serial, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	pj, _ := json.MarshalIndent(parallel, "", " ")
	aj, _ := json.MarshalIndent(again, "", " ")
	if !bytes.Equal(sj, pj) {
		t.Fatalf("serial and parallel sweeps differ:\n%s\n%s", sj, pj)
	}
	if !bytes.Equal(sj, aj) {
		t.Fatalf("repeated sweeps differ:\n%s\n%s", sj, aj)
	}

	if len(serial.Points) != 8 {
		t.Fatalf("%d points, want 8", len(serial.Points))
	}
	i := 0
	for _, failure := range []string{"column", "survivor-row:1"} {
		for _, h := range []float64{0.5, 2} {
			for _, p := range []int{8, 32} {
				pt := serial.Points[i]
				if pt.Failure != failure || pt.HorizonYears != h || pt.Period != p {
					t.Fatalf("point %d = (%s, %v, %d), want (%s, %v, %d)",
						i, pt.Failure, pt.HorizonYears, pt.Period, failure, h, p)
				}
				i++
			}
		}
	}

	// The survivor-row cluster kills half the fabric up front; every point
	// must reflect it, and the explorer must still accelerate on what is
	// left of the healthy-column scenario.
	for _, pt := range serial.Points {
		switch pt.Failure {
		case "survivor-row:1":
			if pt.AliveFraction > 0.5+1e-9 {
				t.Errorf("survivor-row point %+v: alive fraction ignores the cluster", pt)
			}
		case "column":
			if pt.InitialSpeedup <= 1 {
				t.Errorf("column point %+v: no acceleration despite 30 live cells", pt)
			}
		}
	}

	if serial.Render() == "" || len(serial.CSVRows()) != len(serial.Points) {
		t.Error("render/CSV surface broken")
	}
}
