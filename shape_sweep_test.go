package agingcgra

import (
	"bytes"
	"encoding/json"
	"testing"
)

// shapeSweepOpts is the reduced grid the determinism pin runs: 3 ladder
// variants × 2 failure scenarios over a short horizon.
func shapeSweepOpts(workers int) ShapeSweepOptions {
	return ShapeSweepOptions{
		Ladders:    []string{"halving", "full-only", "fine"},
		Failures:   []string{"column", "columns:0+8"},
		EpochYears: 0.5,
		MaxYears:   3,
		Workers:    workers,
	}
}

// TestShapeSweepDeterministic pins the (ladder × failure) preset: point
// order is the deterministic failure-major grid, serial and parallel runs
// are byte-identical, repeated runs reproduce the same bytes, and every
// point carries the derived search overhead the ladder cost — the numbers
// the cgra-dse -shape-sweep CSV output rests on.
func TestShapeSweepDeterministic(t *testing.T) {
	serial, err := ShapeSweep(shapeSweepOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ShapeSweep(shapeSweepOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	again, err := ShapeSweep(shapeSweepOpts(1))
	if err != nil {
		t.Fatal(err)
	}

	sj, err := json.MarshalIndent(serial, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	pj, _ := json.MarshalIndent(parallel, "", " ")
	aj, _ := json.MarshalIndent(again, "", " ")
	if !bytes.Equal(sj, pj) {
		t.Fatalf("serial and parallel sweeps differ:\n%s\n%s", sj, pj)
	}
	if !bytes.Equal(sj, aj) {
		t.Fatalf("repeated sweeps differ:\n%s\n%s", sj, aj)
	}

	if len(serial.Points) != 6 {
		t.Fatalf("%d points, want 6", len(serial.Points))
	}
	i := 0
	for _, failure := range []string{"column", "columns:0+8"} {
		for _, ladder := range []string{"halving", "full-only", "fine"} {
			pt := serial.Points[i]
			if pt.Failure != failure || pt.Ladder != ladder {
				t.Fatalf("point %d = (%s, %s), want (%s, %s)", i, pt.Failure, pt.Ladder, failure, ladder)
			}
			i++
		}
	}

	for _, pt := range serial.Points {
		// Richer ladders expand to more rungs; full-only is the degenerate
		// single-rung ladder.
		if pt.Ladder == "full-only" && pt.Rungs != 1 {
			t.Errorf("full-only ladder expanded to %d rungs", pt.Rungs)
		}
		if pt.Ladder == "fine" && pt.Rungs <= 7 {
			t.Errorf("fine ladder expanded to only %d rungs", pt.Rungs)
		}
		// Shape-aware translation keeps the kernel accelerating around a
		// single dead column, and the cost model prices every point's scans.
		if pt.Failure == "column" && pt.InitialSpeedup <= 1 {
			t.Errorf("column point %+v: no acceleration despite 30 live cells", pt)
		}
		if pt.SearchPerOffloadCycles <= 0 {
			t.Errorf("point %+v: derived search overhead missing", pt)
		}
	}

	if serial.Render() == "" || len(serial.CSVRows()) != len(serial.Points) {
		t.Error("render/CSV surface broken")
	}
}
